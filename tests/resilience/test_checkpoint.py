"""Checkpoint/resume: exact state reproduction, format safety."""

import json
import os
import subprocess
import sys

import pytest

from repro.bench.measure import counters_of
from repro.resilience import (
    CheckpointError,
    EngineCheckpoint,
    SolveBudget,
    capture,
    restore,
)
from repro.solver import SolverEngine, SolverOptions
from repro.experiments.config import options_for
from repro.workloads.generator import RandomSystemConfig, random_system

#: The four directly-engine-drivable configurations (oracle runs go
#: through the two-phase driver, not a single SolverEngine).
ENGINE_LABELS = ("SF-Plain", "IF-Plain", "SF-Online", "IF-Online")


def make_system(seed=5):
    return random_system(RandomSystemConfig(seed=seed, variables=28,
                                            var_var=46, feedback=0.35))


def interrupted_counters(system, label, max_work):
    """Run partial -> capture -> bytes round-trip -> restore -> resume."""
    partial_options = options_for(
        label, budget=SolveBudget(max_work=max_work),
        on_budget="partial", check_stride=1,
    )
    engine = SolverEngine(system, partial_options)
    first = engine.run()
    assert first.is_partial, "budget did not interrupt the run"
    blob = capture(engine).to_bytes()
    resumed = restore(
        system,
        options_for(label, checkpointable=True),
        EngineCheckpoint.from_bytes(blob),
    )
    return counters_of(resumed.resume()), resumed


@pytest.mark.parametrize("label", ENGINE_LABELS)
def test_resume_matches_uninterrupted(label):
    """The acceptance property: interrupted == uninterrupted, exactly."""
    system = make_system()
    uninterrupted = SolverEngine(
        system, options_for(label, checkpointable=True)
    ).run()
    got, engine = interrupted_counters(system, label, max_work=40)
    assert got == counters_of(uninterrupted)
    # And the answers, not just the counters.
    final = engine._make_solution(engine._least_solution())
    for var in system.variables:
        assert final.least_solution(var) == uninterrupted.least_solution(var)


@pytest.mark.parametrize("fraction", (8, 3, 2))
def test_resume_is_cut_point_independent(fraction):
    system = make_system(seed=9)
    expected = counters_of(
        SolverEngine(
            system, options_for("IF-Online", checkpointable=True)
        ).run()
    )
    cut = max(1, expected["work"] // fraction)
    got, _ = interrupted_counters(system, "IF-Online", max_work=cut)
    assert got == expected


def test_capture_requires_journaling():
    engine = SolverEngine(make_system(), SolverOptions())
    engine.run()
    with pytest.raises(CheckpointError, match="journal"):
        capture(engine)


def test_bytes_rejects_garbage_and_bad_versions():
    with pytest.raises(CheckpointError, match="magic"):
        EngineCheckpoint.from_bytes(b"not a checkpoint")
    engine = SolverEngine(
        make_system(), SolverOptions(checkpointable=True)
    )
    engine.run()
    checkpoint = capture(engine)
    checkpoint.version = 999
    with pytest.raises(CheckpointError, match="version"):
        EngineCheckpoint.from_bytes(checkpoint.to_bytes())


def test_restore_rejects_mismatched_system():
    system = make_system(seed=5)
    engine = SolverEngine(system, SolverOptions(checkpointable=True))
    engine.run()
    checkpoint = capture(engine)
    other = make_system(seed=6)
    with pytest.raises(CheckpointError, match="does not match"):
        restore(other, SolverOptions(checkpointable=True), checkpoint)
    with pytest.raises(CheckpointError, match="does not match"):
        restore(
            system,
            options_for("SF-Plain", checkpointable=True),
            checkpoint,
        )


def test_save_load_file_round_trip(tmp_path):
    system = make_system()
    engine = SolverEngine(system, SolverOptions(checkpointable=True))
    engine.run()
    path = os.fspath(tmp_path / "run.ckpt")
    capture(engine).save(path)
    loaded = EngineCheckpoint.load(path)
    resumed = restore(system, SolverOptions(checkpointable=True), loaded)
    assert counters_of(resumed.resume()) == counters_of(
        engine._make_solution(engine._least_solution())
    )


def test_restored_engine_is_checkpointable_again():
    system = make_system()
    first = SolverEngine(system, options_for(
        "IF-Online", budget=SolveBudget(max_work=25),
        on_budget="partial", check_stride=1,
    ))
    first.run()
    second = restore(
        system,
        options_for("IF-Online", budget=SolveBudget(max_work=25),
                    on_budget="partial", check_stride=1),
        capture(first),
    )
    second.resume()
    capture(second)  # must not raise


#: Subprocess script: interrupt a baseline benchmark mid-closure,
#: checkpoint, restore, resume, and compare the final work counters
#: against the committed benchmarks/BASELINE.json record.  Runs in a
#: child process because baseline counters are pinned to
#: PYTHONHASHSEED=0 while the test suite runs under any hash seed.
_BASELINE_SCRIPT = """
import json, sys
from repro.bench.measure import counters_of
from repro.experiments.config import options_for
from repro.resilience import (EngineCheckpoint, SolveBudget, capture,
                              restore)
from repro.solver import SolverEngine
from repro.workloads import suite

label, bench_name = sys.argv[1], sys.argv[2]
baseline = json.load(open("benchmarks/BASELINE.json"))
record = next(r for r in baseline["records"]
              if r["benchmark"] == bench_name and r["experiment"] == label)
system = next(b for b in suite("quick") if b.name == bench_name
              ).program.system
engine = SolverEngine(system, options_for(
    label, budget=SolveBudget(max_work=record["counters"]["work"] // 2),
    on_budget="partial", check_stride=1,
))
assert engine.run().is_partial
blob = capture(engine).to_bytes()
resumed = restore(system, options_for(label, checkpointable=True),
                  EngineCheckpoint.from_bytes(blob))
got = counters_of(resumed.resume())
want = record["counters"]
assert got == want, f"resumed counters {got} != baseline {want}"
print("ok")
"""


@pytest.mark.parametrize("label", ("SF-Online", "IF-Online"))
def test_resume_reproduces_committed_baseline(label):
    env = dict(os.environ, PYTHONHASHSEED="0",
               PYTHONPATH=os.path.join(os.getcwd(), "src"))
    result = subprocess.run(
        [sys.executable, "-c", _BASELINE_SCRIPT, label, "allroots"],
        capture_output=True, text=True, env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))),
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip() == "ok"


# ----------------------------------------------------------------------
# Growth across a checkpoint (incremental clients)
# ----------------------------------------------------------------------

from repro import Variance  # noqa: E402
from repro.solver import CyclePolicy, GraphForm  # noqa: E402
from repro.solver.incremental import IncrementalSolver  # noqa: E402
from repro.solver.options import SolverOptions  # noqa: E402

#: Every live counter an incremental engine accumulates (final-edge
#: counts are only filled by the batch driver's finalize pass).
LIVE_COUNTERS = tuple(
    name for name in
    ("work", "redundant", "self_edges", "resolutions", "clashes",
     "cycle_searches", "cycle_search_visits", "cycles_found",
     "vars_eliminated", "periodic_sweeps")
)


def _drive_incremental(form, interrupt):
    """Two batches with cross-batch cycles; optionally checkpoint
    between them, grow the system, and restore before batch two."""
    solver = IncrementalSolver(SolverOptions(
        form=form, cycles=CyclePolicy.ONLINE, checkpointable=True,
    ))
    box = solver.constructor("box", (Variance.COVARIANT,))
    first = [solver.fresh_var(f"v{i}") for i in range(6)]
    solver.add(solver.term(box, (solver.zero,), label="s0"), first[0])
    for left, right in [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5)]:
        solver.add(first[left], first[right])

    snapshot = solver.checkpoint() if interrupt else None
    # The regression scenario: variables created AFTER the capture.
    late = [solver.fresh_var(f"w{i}") for i in range(4)]
    if interrupt:
        solver.restore(snapshot)

    solver.add(solver.term(box, (solver.one,), label="s1"), late[0])
    # Cycles inside the late batch and across the checkpoint boundary.
    for left, right in [(0, 1), (1, 2), (2, 0)]:
        solver.add(late[left], late[right])
    solver.add(late[2], first[1])
    solver.add(first[5], late[3])
    solver.add(late[3], first[3])
    return solver, first + late


@pytest.mark.parametrize(
    "form", [GraphForm.STANDARD, GraphForm.INDUCTIVE]
)
def test_restore_after_growth_matches_uninterrupted(form):
    """Regression: restore used to re-run the order spec over the grown
    system, permuting ranks for the checkpointed prefix; it must
    instead reinstall the *materialized* ranks and extend them."""
    plain_solver, plain_vars = _drive_incremental(form, interrupt=False)
    restored_solver, restored_vars = _drive_incremental(
        form, interrupt=True
    )
    for name in LIVE_COUNTERS:
        assert getattr(restored_solver.stats, name) \
            == getattr(plain_solver.stats, name), name
    assert plain_solver.stats.cycle_searches > 0
    if form is GraphForm.INDUCTIVE:
        # IF's closure rule is guaranteed to catch these cycles; SF's
        # partial search may legitimately miss them.
        assert plain_solver.stats.cycles_found > 0
    for plain_var, restored_var in zip(plain_vars, restored_vars):
        assert {str(t) for t in plain_solver.least_solution(plain_var)} \
            == {str(t) for t in restored_solver.least_solution(
                restored_var)}


def test_restore_after_growth_preserves_components():
    solver, variables = _drive_incremental(
        GraphForm.INDUCTIVE, interrupt=True
    )
    # first[0..2] collapsed in batch one; late[0..2] joined them via the
    # cross-boundary edges in batch two.
    assert solver.same_component(variables[0], variables[2])
    assert solver.same_component(variables[6], variables[8])


def test_restore_rejects_shrunken_system():
    """A checkpoint of MORE variables than the system has is a
    mismatch, not an index error."""
    solver = IncrementalSolver(SolverOptions(checkpointable=True))
    solver.fresh_var()
    solver.fresh_var()
    snapshot = solver.checkpoint()
    fresh = IncrementalSolver(SolverOptions(checkpointable=True))
    fresh.fresh_var()
    with pytest.raises(CheckpointError):
        fresh.restore(snapshot)
