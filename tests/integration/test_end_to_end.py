"""End-to-end integration: C source -> points-to under all configs."""

import pytest

from repro.andersen import (
    analyze_source,
    analyze_unit_steensgaard,
    points_to_sets_equal,
    solve_points_to,
)
from repro.experiments import SuiteResults, options_for
from repro.workloads import ALL_PROGRAMS, benchmark

pytestmark = pytest.mark.slow


class TestPipeline:
    @pytest.mark.parametrize("name", sorted(ALL_PROGRAMS))
    def test_hand_programs_all_configs_agree(self, name):
        program = analyze_source(ALL_PROGRAMS[name])
        results = [
            solve_points_to(program, options_for(label))
            for label in (
                "SF-Plain", "IF-Plain", "SF-Oracle", "IF-Oracle",
                "SF-Online", "IF-Online",
            )
        ]
        for other in results[1:]:
            assert points_to_sets_equal(results[0], other)

    def test_benchmark_pipeline(self):
        bench = benchmark("ks")
        program = bench.program
        online = solve_points_to(program, options_for("IF-Online"))
        plain = solve_points_to(program, options_for("SF-Plain"))
        assert points_to_sets_equal(online, plain)
        assert online.solution.stats.vars_eliminated > 0

    def test_steensgaard_runs_on_benchmark(self):
        bench = benchmark("allroots")
        result = analyze_unit_steensgaard(bench.unit)
        assert result.total_edges() > 0

    def test_points_to_graph_nonempty(self):
        bench = benchmark("allroots")
        result = solve_points_to(bench.program)
        assert result.total_edges() > 10
        assert result.average_set_size() >= 1.0


class TestSuiteHarness:
    def test_full_quick_suite_run(self):
        results = SuiteResults([benchmark("allroots"), benchmark("ks")])
        records = results.run_all()
        assert len(records) == 12
        by_key = {
            (record.benchmark, record.experiment): record
            for record in records
        }
        # Spot the paper's qualitative claims on the cyclic benchmark.
        ks_plain = by_key[("ks", "SF-Plain")]
        ks_oracle = by_key[("ks", "SF-Oracle")]
        assert ks_oracle.work <= ks_plain.work

    def test_statistics_consistent_with_program(self):
        results = SuiteResults([benchmark("allroots")])
        stats = results.statistics("allroots")
        bench = benchmark("allroots")
        assert stats.set_vars == bench.program.system.num_vars
        assert stats.ast_nodes == bench.ast_nodes


class TestCli:
    def test_table4(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "IF-Online" in out

    def test_model(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["model"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 5.1" in out
        assert "Theorem 5.2" in out

    def test_figure11_quick(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["figure11", "--suite", "quick"]) == 0
        out = capsys.readouterr().out
        assert "MEAN" in out
