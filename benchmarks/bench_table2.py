"""Regenerate paper Table 2: plain and oracle runs.

Shape claims checked (Section 4):

* cycles dominate plain-run cost — oracle work is far below plain work
  on the cyclic benchmarks;
* without cycle elimination SF generally beats IF (redundant transitive
  var-var edges hurt IF);
* with perfect elimination the SF/IF ordering flips on aggregate: the
  mean SF-Oracle / IF-Oracle work ratio exceeds 1 (paper measures ~4.1;
  the analytical model predicts ~2.5 — our synthetic workloads preserve
  the direction with a smaller magnitude, see EXPERIMENTS.md).
"""

from repro.bench.harness import bench_once as once
from repro.experiments import oracle_work_ratio, render_table2, table2


def test_table2(results, benchmark):
    rows = once(benchmark, lambda: table2(results))
    print()
    print(render_table2(results))

    large = [
        row for bench, row in zip(results.benchmarks, rows)
        if bench.ast_nodes > 2000
    ]
    assert large, "suite too small for Table 2 claims"

    # Oracle <= Plain for both forms, usually much less.
    for row in large:
        assert row["SF-Oracle"].work <= row["SF-Plain"].work
        assert row["IF-Oracle"].work <= row["IF-Plain"].work

    # Cycles dominate: on aggregate the oracle saves most of the work.
    total_plain = sum(row["SF-Plain"].work for row in large)
    total_oracle = sum(row["SF-Oracle"].work for row in large)
    assert total_oracle < 0.5 * total_plain

    # IF-Plain does more work than SF-Plain on aggregate (Figure 7's
    # companion claim).
    total_if_plain = sum(row["IF-Plain"].work for row in large)
    assert total_if_plain > total_plain

    # Perfect elimination favours IF on aggregate (Theorem 5.1's
    # direction).
    ratio = oracle_work_ratio(results)
    print(f"\nMean SF-Oracle/IF-Oracle work ratio: {ratio:.2f} "
          "(paper: ~4.1, model: ~2.5)")
    assert ratio > 0.9
