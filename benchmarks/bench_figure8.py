"""Regenerate paper Figure 8: online and oracle analysis times.

Shape: all four configurations scale to the whole suite; IF-Online
stays close to the oracle lower bounds while SF-Online trails (the
paper's ordering IF-Oracle <= SF-Oracle ~ IF-Online <= SF-Online, up to
noise on small programs).
"""

import pytest

from repro.bench.harness import bench_once as once
from repro.experiments import figure8, render_figure8


def test_figure8(results, benchmark):
    series = once(benchmark, lambda: figure8(results))
    print()
    print(render_figure8(results))

    named = {name: points for name, points in series}
    total = {name: sum(y for _, y in points)
             for name, points in named.items()}

    sf_plain_total = sum(
        results.run(bench.name, "SF-Plain").total_seconds
        for bench in results.benchmarks
    )
    if sf_plain_total < 0.5:
        pytest.skip(
            "suite too small for Figure 8 ordering claims (the paper "
            "notes elimination does not pay off on tiny programs)"
        )

    # Everything with elimination beats SF-Plain on aggregate.
    for name, value in total.items():
        assert value < sf_plain_total, name

    # IF-Online close to its oracle (within ~5x aggregate; wall-clock
    # noise on a loaded single core can stretch individual runs).
    assert total["IF-Online (s)"] < 5.0 * total["IF-Oracle (s)"] + 0.2

    # SF-Online is the slowest of the four on aggregate (allow a small
    # noise margin rather than demanding a strict maximum).
    slowest_value = max(total.values())
    assert total["SF-Online (s)"] > 0.7 * slowest_value, total
