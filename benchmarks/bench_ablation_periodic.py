"""Ablation: periodic simplification vs online elimination.

The paper's introduction: "Periodic simplification performed during
resolution helps to scale to larger analysis problems [FA96, FF97,
MW97], but performance is still unsatisfactory.  One problem is
deciding the frequency at which to perform simplifications to keep a
well-balanced cost-benefit tradeoff."

We sweep the sweep frequency on a cyclic benchmark and compare against
online elimination: whatever interval is chosen, online remains
competitive without any tuning knob — the paper's point.
"""

import time

from repro.bench.harness import bench_once as once
from repro.solver import CyclePolicy, GraphForm, SolverOptions, solve
from repro.workloads import benchmark


INTERVALS = (100, 1000, 10000)


def run_sweep():
    bench = benchmark("li")
    system = bench.program.system
    rows = []
    for interval in INTERVALS:
        options = SolverOptions(
            form=GraphForm.INDUCTIVE,
            cycles=CyclePolicy.PERIODIC,
            periodic_interval=interval,
        )
        started = time.perf_counter()
        solution = solve(system, options)
        elapsed = time.perf_counter() - started
        rows.append((options.label, solution.stats.work, elapsed,
                     solution.stats.vars_eliminated,
                     solution.stats.periodic_sweeps))
    for label in ("IF-Plain", "IF-Online"):
        policy = (CyclePolicy.NONE if label == "IF-Plain"
                  else CyclePolicy.ONLINE)
        options = SolverOptions(form=GraphForm.INDUCTIVE, cycles=policy)
        started = time.perf_counter()
        solution = solve(system, options)
        elapsed = time.perf_counter() - started
        rows.append((label, solution.stats.work, elapsed,
                     solution.stats.vars_eliminated, 0))
    return rows


def test_periodic_vs_online(benchmark):
    rows = once(benchmark, run_sweep)
    print()
    print(f"{'config':20s} {'work':>10s} {'seconds':>8s} "
          f"{'elim':>6s} {'sweeps':>6s}")
    for label, work, seconds, eliminated, sweeps in rows:
        print(f"{label:20s} {work:>10,} {seconds:>8.3f} "
              f"{eliminated:>6,} {sweeps:>6,}")

    by_label = {row[0]: row for row in rows}
    online_work = by_label["IF-Online"][1]
    online_time = by_label["IF-Online"][2]
    plain_work = by_label["IF-Plain"][1]

    # Every periodic interval beats plain on work (simplification helps)...
    for interval in INTERVALS:
        periodic_work = by_label[f"IF-Periodic({interval})"][1]
        assert periodic_work < plain_work

    # ...but online needs no frequency knob and stays at least
    # competitive with the best periodic setting on wall-clock time.
    best_periodic_time = min(
        by_label[f"IF-Periodic({interval})"][2] for interval in INTERVALS
    )
    assert online_time < 3.0 * best_periodic_time

    # Online work is in the same ballpark as the best periodic work.
    best_periodic_work = min(
        by_label[f"IF-Periodic({interval})"][1] for interval in INTERVALS
    )
    assert online_work < 5.0 * best_periodic_work
