"""Future-work experiment (paper Section 6): closure analysis.

"We plan to study the impact of online cycle elimination on the
performance of closure analysis in future work."  We run a
set-constraint 0CFA over synthetic higher-order programs with deep
recursion and measure the same four configurations.

Shape claims: recursive functional programs put a meaningful share of
their cache/environment variables in cycles; online elimination removes
most of them and reduces IF's work; all configurations agree on call
targets.
"""

from repro.bench.harness import bench_once as once
from repro.cfa import analyze_cfa_source, solve_cfa
from repro.solver import CyclePolicy, GraphForm, SolverOptions


def synthetic_program(depth: int) -> str:
    """A tower of mutually feeding recursive dispatchers."""
    parts = ["(letrec ((f0 (lambda (x) (f0 x))))"]
    closers = [")"]
    for index in range(1, depth):
        parts.append(
            f"(letrec ((f{index} (lambda (x)"
            f" (if0 x (f{index} (f{index - 1} x)) (f{index - 1} x)))))"
        )
        closers.append(")")
    parts.append(f"(f{depth - 1} (lambda (v) v))")
    return " ".join(parts) + " " + " ".join(closers)


def run_configs(depth: int):
    program = analyze_cfa_source(synthetic_program(depth))
    out = {}
    for form in (GraphForm.STANDARD, GraphForm.INDUCTIVE):
        for policy in (CyclePolicy.NONE, CyclePolicy.ONLINE):
            options = SolverOptions(form=form, cycles=policy)
            result = solve_cfa(program, options)
            out[options.label] = {
                "work": result.solution.stats.work,
                "eliminated": result.solution.stats.vars_eliminated,
                "targets": result.call_targets(),
            }
    return program, out


def test_closure_analysis_cycles(benchmark):
    program, out = once(benchmark, lambda: run_configs(depth=40))
    print()
    for label, data in out.items():
        print(f"  {label:10s} work={data['work']:7,} "
              f"eliminated={data['eliminated']:,}")

    # All configurations agree on the call graph.
    baseline = out["SF-Plain"]["targets"]
    for label, data in out.items():
        assert data["targets"] == baseline, label

    # Recursion produces cycles; online elimination finds them.
    assert out["IF-Online"]["eliminated"] > 10

    # Elimination reduces IF work on this cyclic workload.
    assert out["IF-Online"]["work"] < out["IF-Plain"]["work"]
