"""Regenerate paper Figure 7: times without cycle elimination.

Shape: both curves blow up superlinearly with program size, and SF-Plain
generally outperforms IF-Plain (cycles add many redundant transitive
variable-variable edges under IF).
"""

from repro.bench.harness import bench_once as once
from repro.experiments import figure7, render_figure7


def test_figure7(results, benchmark):
    series = once(benchmark, lambda: figure7(results))
    print()
    print(render_figure7(results))

    named = dict(series)
    sf = named["SF-Plain (s)"]
    if_ = named["IF-Plain (s)"]

    # Superlinear growth: time ratio grows faster than the size ratio
    # between the smallest and largest benchmarks.
    (x0, y0), (x1, y1) = sf[0], sf[-1]
    assert x1 > x0
    if y0 > 0:
        assert y1 / max(y0, 1e-9) > (x1 / x0), "SF-Plain must be superlinear"

    # IF-Plain at least as expensive as SF-Plain on the large half.
    half = len(sf) // 2
    sf_tail = sum(y for _, y in sf[half:])
    if_tail = sum(y for _, y in if_[half:])
    assert if_tail >= sf_tail
