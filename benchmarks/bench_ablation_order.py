"""Ablation: choice of the variable order o(.) (Section 2.4's aside).

The paper: "Choosing a good order is hard, and we have found that a
random order performs as well or better than any other order we
picked."  We compare random, creation, and reverse-creation orders for
IF-Online on the cyclic half of the suite.
"""

from repro.bench.harness import bench_once as once
from repro.graph import CreationOrder, RandomOrder, ReverseCreationOrder
from repro.solver import CyclePolicy, GraphForm, SolverOptions, solve

ORDERS = (
    ("random", RandomOrder(0)),
    ("creation", CreationOrder()),
    ("reverse", ReverseCreationOrder()),
)


def run_order(results, order):
    work = 0
    eliminated = 0
    for bench in results.benchmarks:
        if results.statistics(bench.name).final_scc_vars < 20:
            continue
        solution = solve(bench.program.system, SolverOptions(
            form=GraphForm.INDUCTIVE,
            cycles=CyclePolicy.ONLINE,
            order=order,
        ))
        work += solution.stats.work
        eliminated += solution.stats.vars_eliminated
    return {"work": work, "eliminated": eliminated}


def test_order_ablation(results, benchmark):
    outcome = once(benchmark, lambda: {
        name: run_order(results, order) for name, order in ORDERS
    })
    print()
    for name, data in outcome.items():
        print(f"IF-Online order={name:9s} work={data['work']:>10,} "
              f"eliminated={data['eliminated']:,}")

    # Random must be competitive with the best alternative (within 2x
    # on work) — the paper's justification for defaulting to random.
    best = min(data["work"] for data in outcome.values())
    assert outcome["random"]["work"] <= 2.0 * best

    # Every order still eliminates a substantial number of variables.
    for name, data in outcome.items():
        assert data["eliminated"] > 0, name
