"""Regenerate the Section 5 analytical results (Theorems 5.1 and 5.2).

Three layers of validation:

1. the closed-form sums themselves (Theorem 5.1's ratio trend, Theorem
   5.2's bound);
2. Monte-Carlo simulation of the random-graph model against the sums;
3. the *production solver* run on model-distributed inputs.
"""

import pytest

from repro.bench.harness import bench_once as once
from repro.model import (
    expected_reachable_exact,
    expected_work_if,
    expected_work_sf,
    measure_solver_on_model,
    simulate_reachable,
    simulate_work,
    theorem_5_1_ratio,
    theorem_5_2_bound,
)


def test_theorem_5_1_formula(benchmark):
    ratios = once(
        benchmark,
        lambda: [theorem_5_1_ratio(n)
                 for n in (10**3, 10**4, 10**5, 10**6)],
    )
    print(f"\nTheorem 5.1 ratios (n=1e3..1e6): "
          f"{[round(r, 3) for r in ratios]} (paper: -> ~2.5)")
    assert ratios == sorted(ratios)
    assert ratios[-1] == pytest.approx(2.5, abs=0.1)


def test_theorem_5_2_bound(benchmark):
    value = once(benchmark, lambda: theorem_5_2_bound(2.0))
    print(f"\nTheorem 5.2 bound at k=2: {value:.3f} (paper: ~2.2)")
    assert value == pytest.approx(2.195, abs=0.01)
    assert expected_reachable_exact(10**5, 2.0) <= value


def test_monte_carlo_matches_formulas(benchmark):
    n, m, p = 8, 5, 1 / 8
    sim = once(
        benchmark, lambda: simulate_work(n, m, p, trials=300, seed=17)
    )
    formula_sf = expected_work_sf(n, m, p)
    formula_if = expected_work_if(n, m, p)
    print(f"\nMonte Carlo: SF {sim.mean_work_sf:.1f} vs formula "
          f"{formula_sf:.1f}; IF {sim.mean_work_if:.1f} vs formula "
          f"{formula_if:.1f}")
    assert sim.mean_work_sf == pytest.approx(formula_sf, rel=0.25)
    assert sim.mean_work_if == pytest.approx(formula_if, rel=0.25)


def test_monte_carlo_reachability(benchmark):
    sim = once(
        benchmark,
        lambda: simulate_reachable(400, 2.0, trials=4, seed=5),
    )
    bound = theorem_5_2_bound(2.0)
    print(f"\nMean reachable via decreasing chains: "
          f"{sim.mean_reachable:.2f} <= {bound:.2f}")
    assert sim.mean_reachable <= bound * 1.25


def test_solver_on_model_distribution(benchmark):
    comparison = once(
        benchmark, lambda: measure_solver_on_model(400, trials=3, seed=2)
    )
    print(f"\nProduction solver on model inputs (n=400): SF/IF work "
          f"ratio {comparison.ratio:.2f} (grows toward ~2.5 with n)")
    assert comparison.ratio > 1.0


def test_measured_search_cost_matches_theorem(results, benchmark):
    """Live search-visit counters from real runs validate Theorem 5.2."""
    def collect():
        visits = []
        for bench in results.benchmarks:
            record = results.run(bench.name, "IF-Online")
            if record.cycles_found:
                visits.append(record.mean_search_visits)
        return visits

    visits = once(benchmark, collect)
    mean = sum(visits) / len(visits)
    print(f"\nMean nodes visited per partial search on the real suite: "
          f"{mean:.2f} (paper observes ~2)")
    assert mean < 6.0
