"""Regenerate paper Figure 9: speedup over the standard implementation.

Shape: speedups grow with SF-Plain's absolute time; for very small
programs elimination costs more than it saves (speedup < 1 is expected
there — the paper says the same), while the largest programs see large
factors (the paper reports up to ~50x total and ~13x for SF-Online; our
scaled suite reaches double digits on the biggest entries).
"""

import pytest

from repro.bench.harness import bench_once as once
from repro.experiments import figure9, figure9_work, render_figure9


def test_figure9(results, benchmark):
    series = once(benchmark, lambda: figure9(results))
    print()
    print(render_figure9(results))

    named = dict(series)
    total = named["IF-Online over SF-Plain"]

    # Speedup on the largest program exceeds speedup on the smallest.
    assert total[-1][1] > total[0][1]

    if total[-1][0] < 0.2:
        pytest.skip(
            "SF-Plain finishes in under 0.2s everywhere; the paper's "
            "large-program speedup claims need a bigger suite"
        )

    # The largest benchmark must show a substantial total speedup.
    assert total[-1][1] > 3.0, total

    # Work-based variant is deterministic; check the same shape there.
    work_series = dict(figure9_work(results))
    work_total = work_series["SF-Plain/IF-Online work"]
    assert work_total[-1][1] > 5.0
    assert work_total[-1][1] > work_total[0][1]

    # Online-only speedup (SF-Online over SF-Plain) is also positive on
    # the big end, but smaller than the combined effect.
    online_only = named["SF-Online over SF-Plain"]
    assert online_only[-1][1] > 1.0
