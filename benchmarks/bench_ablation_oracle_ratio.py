"""Ablation: what drives the SF-Oracle / IF-Oracle work ratio.

The paper measures SF doing ~4.1x more work than IF under perfect cycle
elimination; its random-graph model predicts ~2.5x.  On our default
suite the ratio is only ~1.2x — the condensed graphs are too shallow.
This ablation shows the ratio is a *workload* property, controlled by
call fan-in: raising calls-per-function (more simple paths per
source-to-sink pair, i.e. more diamonds for SF to re-propagate through)
moves the measured ratio into the model's regime on the same program
skeleton.
"""

from repro.bench.harness import bench_once as once
from repro.solver import CyclePolicy, GraphForm, SolverOptions, solve
from repro.workloads.generator import generate_program
from repro.workloads.suite import Benchmark, _config

#: (label, cross_flow, main_calls_per_function)
VARIANTS = (
    ("low fan-in (suite default)", 0.25, 2),
    ("high fan-in", 0.4, 3),
)


def measure():
    rows = []
    for label, cross_flow, calls in VARIANTS:
        config = _config(
            "oracle-ratio-probe", seed=116, functions=115,
            cross_flow=cross_flow, main_calls_per_function=calls,
        )
        bench = Benchmark(config, generate_program(config))
        system = bench.program.system
        sf = solve(system, SolverOptions(
            form=GraphForm.STANDARD, cycles=CyclePolicy.ORACLE))
        if_ = solve(system, SolverOptions(
            form=GraphForm.INDUCTIVE, cycles=CyclePolicy.ORACLE))
        rows.append((label, sf.stats.work, if_.stats.work))
    return rows


def test_oracle_ratio_tracks_fan_in(benchmark):
    rows = once(benchmark, measure)
    print()
    ratios = {}
    for label, sf_work, if_work in rows:
        ratio = sf_work / if_work
        ratios[label] = ratio
        print(f"  {label:28s} SF-Oracle={sf_work:>8,} "
              f"IF-Oracle={if_work:>8,} ratio={ratio:.2f}")
    print("  (model predicts ~2.5; the paper measured ~4.1)")

    low = ratios["low fan-in (suite default)"]
    high = ratios["high fan-in"]
    assert high > low, "fan-in must widen the SF/IF gap"
    assert high > 2.0, "high fan-in must reach the model's regime"
