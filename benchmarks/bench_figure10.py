"""Regenerate paper Figure 10: IF-Online versus SF-Online.

Shape: IF-Online is consistently faster than SF-Online for medium and
large programs (the paper reports a factor of up to ~3.8 in time; the
deterministic work ratio is even clearer), while tiny programs may go
either way.
"""

import pytest

from repro.bench.harness import bench_once as once
from repro.experiments import figure10, render_figure10


def test_figure10(results, benchmark):
    series = once(benchmark, lambda: figure10(results))
    print()
    print(render_figure10(results))

    named = dict(series)
    work_ratio = named["SF-Online/IF-Online work"]

    # IF wins on work for medium and large programs (the paper: "at
    # least 10,000 AST nodes"; our scaled threshold is 4,000).
    tail = [ratio for ast, ratio in work_ratio if ast > 4000]
    if not tail:
        pytest.skip("no medium/large benchmarks in the active suite")
    assert all(ratio > 1.0 for ratio in tail), work_ratio
    assert max(tail) > 2.0

    # Wall-clock is noisy on a loaded box; work is the canonical
    # metric.  Sanity-check only: the time ratio on the largest entry
    # must not contradict the work ratio by more than ~2x.
    time_ratio = named["SF-Online/IF-Online time"]
    if time_ratio[-1][0] > 8000:
        assert time_ratio[-1][1] > 0.4
