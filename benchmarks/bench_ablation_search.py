"""Ablation: SF online search direction (Section 4's aside).

The paper: "The analog to predecessor chains in SF are increasing
chains.  Searching increasing chains in SF results in a higher
detection rate (57%), but the much higher cost outweighs any benefits."

We run SF-Online under both search modes on the cyclic half of the
suite and report detection fractions and search cost.
"""

from repro.bench.harness import bench_once as once
from repro.graph import SearchMode
from repro.solver import CyclePolicy, GraphForm, SolverOptions, solve


def run_mode(results, mode):
    eliminated = 0
    scc_vars = 0
    visits = 0
    searches = 0
    for bench in results.benchmarks:
        stats = results.statistics(bench.name)
        if stats.final_scc_vars < 20:
            continue
        solution = solve(bench.program.system, SolverOptions(
            form=GraphForm.STANDARD,
            cycles=CyclePolicy.ONLINE,
            search_mode=mode,
        ))
        eliminated += solution.stats.vars_eliminated
        scc_vars += stats.final_scc_vars
        visits += solution.stats.cycle_search_visits
        searches += solution.stats.cycle_searches
    return {
        "fraction": eliminated / scc_vars if scc_vars else 0.0,
        "mean_visits": visits / searches if searches else 0.0,
    }


def test_increasing_chains_ablation(results, benchmark):
    outcome = once(benchmark, lambda: {
        "decreasing": run_mode(results, SearchMode.DECREASING),
        "increasing": run_mode(results, SearchMode.INCREASING),
    })
    dec = outcome["decreasing"]
    inc = outcome["increasing"]
    print(f"\nSF-Online decreasing: detect {dec['fraction']:.0%}, "
          f"{dec['mean_visits']:.2f} visits/search")
    print(f"SF-Online increasing: detect {inc['fraction']:.0%}, "
          f"{inc['mean_visits']:.2f} visits/search")

    # The paper's trade-off: increasing chains detect at least as many
    # cycle variables but pay more per search.
    assert inc["fraction"] >= dec["fraction"] * 0.9
    assert inc["mean_visits"] > dec["mean_visits"]
