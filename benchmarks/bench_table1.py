"""Regenerate paper Table 1: static benchmark data.

Checks the suite sits in the regimes the paper reports: sparse initial
graphs, a vars/AST ratio well below one, and most cycle variables
appearing only in the *final* graph (Section 2.5: "less than 20% of the
variables that are in strongly connected components in the final graph
also appear in strongly connected components in the initial graph" for
the majority of benchmarks).
"""

from repro.bench.harness import bench_once as once
from repro.experiments import render_table1, table1


def test_table1(results, benchmark):
    stats = once(benchmark, lambda: table1(results))
    print()
    print(render_table1(results))

    assert len(stats) == len(results.benchmarks)
    sizes = [s.ast_nodes for s in stats]
    assert sizes == sorted(sizes), "suite must span increasing sizes"
    assert sizes[-1] > 10 * sizes[0], "suite must span an order of magnitude"

    for s in stats:
        # Sparse initial graphs (the Section 5 model regime).
        assert s.initial_edges < 3 * s.initial_nodes, s.name
        # Variables per AST node in Table 1's ballpark.
        assert s.set_vars < 0.8 * s.ast_nodes, s.name
        # Cycles grow during closure.
        assert s.final_scc_vars >= s.initial_scc_vars, s.name

    # Most cycle variables appear only during closure: on aggregate the
    # initial graphs contain well under half of the final SCC content
    # (the paper reports under 20% for the majority of its benchmarks;
    # our synthetic programs are somewhat more cyclic up front).
    total_initial = sum(s.initial_scc_vars for s in stats)
    total_final = sum(s.final_scc_vars for s in stats)
    assert total_initial < 0.5 * total_final
