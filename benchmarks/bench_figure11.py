"""Regenerate paper Figure 11: fraction of cycle variables detected.

Shape: IF-Online finds the large majority of final-SCC variables
(paper: ~80%), SF-Online about half of IF's fraction (paper: ~40%).
"""

from repro.bench.harness import bench_once as once
from repro.experiments import figure11, figure11_averages, render_figure11


def test_figure11(results, benchmark):
    rows = once(benchmark, lambda: figure11(results))
    print()
    print(render_figure11(results))

    mean_if, mean_sf = figure11_averages(results)
    assert mean_if > 0.55, mean_if
    assert mean_sf < mean_if
    assert mean_if > 1.5 * mean_sf, (mean_if, mean_sf)

    # Per benchmark, IF ties or beats SF almost everywhere.
    wins = sum(1 for _, if_frac, sf_frac in rows if if_frac >= sf_frac)
    assert wins >= 0.8 * len(rows)
