"""Baseline comparison: Andersen (IF-Online) vs Steensgaard.

The paper's motivating context (Sections 1 and 6): Shapiro & Horwitz
found Andersen's analysis far more precise than Steensgaard's but
impractically slow with a standard implementation; online cycle
elimination closes most of the speed gap.  We measure both analyses on
the suite and report precision (average points-to set size over
variable locations) and time.
"""

import time

from repro.andersen import analyze_unit_steensgaard, solve_points_to
from repro.bench.harness import bench_once as once
from repro.experiments import options_for


def run_comparison(results):
    rows = []
    for bench in results.benchmarks:
        start = time.perf_counter()
        andersen = solve_points_to(
            bench.program, options_for("IF-Online")
        )
        andersen_time = time.perf_counter() - start
        andersen_avg = andersen.average_set_size()

        start = time.perf_counter()
        steensgaard = analyze_unit_steensgaard(bench.unit)
        steensgaard_time = time.perf_counter() - start
        steensgaard_avg = steensgaard.average_set_size()
        rows.append((
            bench.name, andersen_avg, steensgaard_avg,
            andersen_time, steensgaard_time,
        ))
    return rows


def test_precision_and_speed(results, benchmark):
    rows = once(benchmark, lambda: run_comparison(results))
    print()
    print(f"{'Benchmark':14s} {'And.avg':>8s} {'Ste.avg':>8s} "
          f"{'And.s':>7s} {'Ste.s':>7s}")
    for name, a_avg, s_avg, a_t, s_t in rows:
        print(f"{name:14s} {a_avg:8.2f} {s_avg:8.2f} {a_t:7.3f} {s_t:7.3f}")

    # Precision: Steensgaard's average set size is at least Andersen's
    # on aggregate (strictly coarser analysis).
    total_andersen = sum(r[1] for r in rows)
    total_steensgaard = sum(r[2] for r in rows)
    assert total_steensgaard >= total_andersen * 0.95

    # Speed: with online cycle elimination, Andersen stays within a
    # modest factor of the almost-linear baseline (the paper's
    # "generally competitive" claim).
    andersen_total = sum(r[3] for r in rows)
    steensgaard_total = sum(r[4] for r in rows)
    assert andersen_total < 25 * steensgaard_total
