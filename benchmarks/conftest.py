"""Shared fixtures for the benchmark harness.

The suite defaults to "medium" (16 programs up to ~14k AST nodes, the
regime where the paper's factors are visible) and can be overridden::

    REPRO_BENCH_SUITE=quick pytest benchmarks/ --benchmark-only
    REPRO_BENCH_SUITE=full  pytest benchmarks/ --benchmark-only

One ``SuiteResults`` instance is shared by the whole session so each
(benchmark, experiment) pair is solved exactly once no matter how many
tables and figures read it.  It is constructed through
:func:`repro.bench.harness.suite_results` so these scripts and the
regression harness (``python -m repro.bench``) share one measurement
path.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import bench_once, suite_results
from repro.experiments import SuiteResults


def suite_name() -> str:
    return os.environ.get("REPRO_BENCH_SUITE", "medium")


@pytest.fixture(scope="session")
def results() -> SuiteResults:
    return suite_results(suite_name())


@pytest.fixture(scope="session")
def large_benchmark(results):
    """The largest benchmark in the active suite (for headline claims)."""
    return max(results.benchmarks, key=lambda bench: bench.ast_nodes)


#: Re-exported for the ``bench_*.py`` scripts; the implementation lives
#: in :mod:`repro.bench.harness` next to the rest of the harness.
once = bench_once
