"""Shared fixtures for the benchmark harness.

The suite defaults to "medium" (16 programs up to ~14k AST nodes, the
regime where the paper's factors are visible) and can be overridden::

    REPRO_BENCH_SUITE=quick pytest benchmarks/ --benchmark-only
    REPRO_BENCH_SUITE=full  pytest benchmarks/ --benchmark-only

One ``SuiteResults`` instance is shared by the whole session so each
(benchmark, experiment) pair is solved exactly once no matter how many
tables and figures read it.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import SuiteResults


def suite_name() -> str:
    return os.environ.get("REPRO_BENCH_SUITE", "medium")


@pytest.fixture(scope="session")
def results() -> SuiteResults:
    return SuiteResults.for_suite(suite_name())


@pytest.fixture(scope="session")
def large_benchmark(results):
    """The largest benchmark in the active suite (for headline claims)."""
    return max(results.benchmarks, key=lambda bench: bench.ast_nodes)


def once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing.

    Most of these harnesses time full analysis runs (seconds); repeated
    rounds would multiply the suite cost for no statistical benefit.
    """
    return benchmark.pedantic(func, rounds=1, iterations=1)
