"""Regenerate paper Table 3: online cycle elimination runs.

Shape claims checked (Section 4): online elimination eliminates a large
fraction of cycle variables, IF-Online eliminates about twice the
fraction SF-Online does, and the partial searches stay tiny (the
Theorem 5.2 regime).
"""

from repro.bench.harness import bench_once as once
from repro.experiments import render_table3, table3


def test_table3(results, benchmark):
    rows = once(benchmark, lambda: table3(results))
    print()
    print(render_table3(results))

    cyclic = [
        (bench, row)
        for bench, row in zip(results.benchmarks, rows)
        if results.statistics(bench.name).final_scc_vars > 20
    ]
    assert cyclic, "suite has no cyclic benchmarks"

    total_scc = sum(
        results.statistics(bench.name).final_scc_vars
        for bench, _ in cyclic
    )
    if_eliminated = sum(
        row["IF-Online"].vars_eliminated for _, row in cyclic
    )
    sf_eliminated = sum(
        row["SF-Online"].vars_eliminated for _, row in cyclic
    )

    if_fraction = if_eliminated / total_scc
    sf_fraction = sf_eliminated / total_scc
    print(f"\nAggregate detection: IF {if_fraction:.0%}, SF {sf_fraction:.0%} "
          "(paper: ~80% / ~40%)")
    assert if_fraction > 0.55
    assert sf_fraction < if_fraction
    assert if_fraction > 1.5 * sf_fraction

    # Theorem 5.2: the partial search visits ~2 nodes on average.
    for _, row in cyclic:
        assert row["IF-Online"].mean_search_visits < 8.0
