#!/usr/bin/env python
"""Look inside the two graph representations (paper Figure 2).

Builds the paper's running example — sources L1..Lk flowing through a
chain X -> Y1..Yl -> Z into sinks R1..Rm — and shows where each
representation stores its edges and how much work closure does.

Run:  python examples/compare_forms.py
"""

from repro import ConstraintSystem, Variance
from repro.graph import CreationOrder
from repro.solver import CyclePolicy, GraphForm, SolverOptions, solve


def build(k=3, l=4, m=2):
    """The Figure 2 constraint system: L_i <= X <= Y_j <= Z <= R_h."""
    system = ConstraintSystem("figure2")
    c = system.constructor("c", (Variance.COVARIANT,))
    x = system.fresh_var("X")
    ys = [system.fresh_var(f"Y{i}") for i in range(l)]
    z = system.fresh_var("Z")
    for i in range(k):
        system.add(system.term(c, (system.zero,), label=f"L{i}"), x)
    for y in ys:
        system.add(x, y)
        system.add(y, z)
    for h in range(m):
        # Distinct sink terms R_h.
        sink_arg = system.fresh_var(f"r{h}")
        system.add(z, system.term(c, (sink_arg,)))
    return system, x, ys, z


def show(form, system, x, ys, z):
    options = SolverOptions(
        form=form, cycles=CyclePolicy.NONE, order=CreationOrder()
    )
    solution = solve(system, options)
    graph = solution.graph
    print(f"\n=== {form.value} (creation order: o(X) < o(Yi) < o(Z)) ===")
    print(f"work = {solution.stats.work}, "
          f"redundant = {solution.stats.redundant}, "
          f"final edges = {solution.stats.final_edges}")
    for var in (x, ys[0], z):
        index = var.index
        succs = sorted(graph.canonical_successors(index))
        preds = sorted(graph.canonical_predecessors(index))
        sources = sorted(str(t) for t in graph.sources[index])
        sinks = len(graph.sinks[index])
        print(f"  {var.name:3s}: succ_vars={succs} pred_vars={preds} "
          f"sources={sources} sinks={sinks}")
    return solution


def main() -> None:
    system, x, ys, z = build()
    print("Constraints: L0..L2 <= X;  X <= Yi <= Z (i=0..3);  "
          "Z <= R0, R1")

    sf = show(GraphForm.STANDARD, system, x, ys, z)
    if_ = show(GraphForm.INDUCTIVE, system, x, ys, z)

    print(
        f"\nSF copied every source down the whole chain "
        f"(sources explicit everywhere);\n"
        f"IF left them at X and relies on the final least-solution "
        f"sweep.\nWork: SF={sf.stats.work} vs IF={if_.stats.work}."
    )
    print("\nBoth compute the same least solution for Z:")
    print(" ", sorted(str(t) for t in sf.least_solution(z)))
    print(" ", sorted(str(t) for t in if_.least_solution(z)))


if __name__ == "__main__":
    main()
