#!/usr/bin/env python
"""The paper's headline experiment in miniature.

Generates a synthetic benchmark, runs all six configurations of
Table 4, and prints the work/time/elimination comparison — a one-file
version of Tables 2 and 3.

Run:  python examples/cycle_elimination_demo.py [benchmark-name]
      (default: "li"; try "cvs-1.3" for the largest gap)
"""

import sys

from repro.experiments import EXPERIMENT_LABELS, options_for
from repro.solver import solve
from repro.workloads import benchmark, suite_names


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "li"
    try:
        bench = benchmark(name)
    except KeyError:
        print(f"unknown benchmark {name!r}; available:")
        print(" ", ", ".join(suite_names("full")))
        raise SystemExit(1)

    program = bench.program
    print(
        f"{bench.name}: {bench.ast_nodes} AST nodes, "
        f"{bench.lines_of_code} lines, "
        f"{program.system.num_vars} set variables"
    )
    print(f"{'experiment':11s} {'work':>10s} {'edges':>9s} "
          f"{'seconds':>8s} {'eliminated':>10s}")

    baseline = None
    for label in EXPERIMENT_LABELS:
        solution = solve(program.system, options_for(label))
        stats = solution.stats
        print(
            f"{label:11s} {stats.work:>10,} {stats.final_edges:>9,} "
            f"{stats.total_seconds:>8.3f} {stats.vars_eliminated:>10,}"
        )
        if label == "SF-Plain":
            baseline = stats.total_seconds

    online = solve(program.system, options_for("IF-Online"))
    if baseline and online.stats.total_seconds:
        speedup = baseline / online.stats.total_seconds
        print(
            f"\nIF-Online over SF-Plain: {speedup:.1f}x "
            "(the paper reports up to ~50x on its largest programs)"
        )


if __name__ == "__main__":
    main()
