#!/usr/bin/env python
"""Andersen's points-to analysis on a C program.

Parses C source (a file given on the command line, or a built-in demo
program), generates set constraints per the paper's Section 3
formulation, solves with IF-Online, and prints the points-to graph.
Also runs the Steensgaard baseline to show the precision difference.

Run:  python examples/pointsto_analysis.py [file.c]
"""

import sys

from repro.andersen import (
    analyze_source,
    analyze_unit_steensgaard,
    solve_points_to,
)
from repro.cfront import parse

DEMO = """
int x, y;
int *p, *q;
int **pp;

struct list { struct list *next; int *item; };
struct list *head;

void push(struct list **slot, int *value) {
    struct list *cell;
    cell = (struct list *)malloc(sizeof(struct list));
    cell->next = *slot;
    cell->item = value;
    *slot = cell;
}

int *choose(int *a, int *b) {
    return a ? a : b;
}

int main(void) {
    p = &x;
    q = &y;
    pp = &p;
    *pp = choose(p, q);
    push(&head, q);
    return 0;
}
"""


def main() -> None:
    if len(sys.argv) > 1:
        with open(sys.argv[1], "r", encoding="utf-8") as handle:
            source = handle.read()
        name = sys.argv[1]
    else:
        source, name = DEMO, "<demo>"

    program = analyze_source(source, filename=name)
    print(
        f"{name}: {program.ast_nodes} AST nodes, "
        f"{program.num_locations} abstract locations, "
        f"{program.system.num_vars} set variables, "
        f"{len(program.system)} constraints"
    )

    result = solve_points_to(program)  # IF-Online by default
    stats = result.solution.stats
    print(
        f"solved: work={stats.work}, final edges={stats.final_edges}, "
        f"cycle variables eliminated={stats.vars_eliminated}\n"
    )

    print("Andersen points-to sets (non-empty):")
    for location, targets in sorted(
        result.graph.items(), key=lambda item: item[0].name
    ):
        if targets:
            names = ", ".join(sorted(t.name for t in targets))
            print(f"  {location.name:16s} -> {{{names}}}")

    steensgaard = analyze_unit_steensgaard(parse(source, name))
    print(
        f"\nPrecision: Andersen avg set size "
        f"{result.average_set_size():.2f}, Steensgaard "
        f"{steensgaard.average_set_size():.2f} (coarser)"
    )


if __name__ == "__main__":
    main()
