#!/usr/bin/env python
"""Closure analysis (0CFA) — the paper's Section 6 future work.

The paper closes with: "We plan to study the impact of online cycle
elimination on the performance of closure analysis in future work."
This example runs that experiment: a set-constraint 0CFA for a small
functional language, solved with and without online cycle elimination.

Run:  python examples/closure_analysis.py
"""

from repro.cfa import analyze_cfa_source, solve_cfa
from repro.solver import CyclePolicy, GraphForm, SolverOptions

PROGRAM = """
(letrec ((map (lambda (f)
                (lambda (xs)
                  (if0 xs 0 ((map f) (f xs)))))))
  (let ((inc (lambda (n) (+ n 1))))
    (let ((twice (lambda (g) (lambda (v) (g (g v))))))
      ((map (twice inc)) 3))))
"""


def main() -> None:
    program = analyze_cfa_source(PROGRAM)
    print("Program:")
    print(PROGRAM)
    print(
        f"{program.root.count_nodes()} AST nodes, "
        f"{program.system.num_vars} set variables, "
        f"{len(program.system)} constraints\n"
    )

    result = solve_cfa(program)
    print("Call targets (application label -> reaching closures):")
    for label, names in sorted(result.call_targets().items()):
        rendered = ", ".join(sorted(names)) if names else "-"
        print(f"  app@{label:<3d} -> {rendered}")

    print("\nOnline cycle elimination on the recursive constraints:")
    for form in (GraphForm.STANDARD, GraphForm.INDUCTIVE):
        for policy in (CyclePolicy.NONE, CyclePolicy.ONLINE):
            options = SolverOptions(form=form, cycles=policy)
            solved = solve_cfa(program, options)
            stats = solved.solution.stats
            print(
                f"  {options.label:10s} work={stats.work:5d} "
                f"eliminated={stats.vars_eliminated}"
            )


if __name__ == "__main__":
    main()
