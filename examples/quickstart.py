#!/usr/bin/env python
"""Quickstart: build and solve an inclusion constraint system.

Demonstrates the core library without the C frontend: variables,
constructors with variance, constraints, the six solver configurations,
and online cycle elimination.

Run:  python examples/quickstart.py
"""

from repro import (
    ConstraintSystem,
    CyclePolicy,
    GraphForm,
    SolverOptions,
    Variance,
    solve,
)


def main() -> None:
    system = ConstraintSystem("quickstart")

    # A unary covariant constructor to build source terms with.
    box = system.constructor("box", (Variance.COVARIANT,))

    # X <= Y <= Z <= X : a three-cycle, plus a payload flowing in.
    x, y, z, out = system.fresh_vars(4, "v")
    payload = system.term(box, (system.zero,), label="payload")
    system.add(payload, x)
    system.add(x, y)
    system.add(y, z)
    system.add(z, x)      # closes the cycle
    system.add(z, out)    # and escapes to a fourth variable

    print("Constraints:")
    for left, right in system.constraints:
        print(f"  {left} <= {right}")

    print("\nSolving under all six configurations (paper Table 4):")
    for form in (GraphForm.STANDARD, GraphForm.INDUCTIVE):
        for policy in (CyclePolicy.NONE, CyclePolicy.ONLINE,
                       CyclePolicy.ORACLE):
            options = SolverOptions(form=form, cycles=policy)
            solution = solve(system, options)
            ls = sorted(str(t) for t in solution.least_solution(out))
            print(
                f"  {options.label:10s} LS(out)={ls} "
                f"work={solution.stats.work:3d} "
                f"eliminated={solution.stats.vars_eliminated}"
            )

    # Online elimination collapsed the cycle onto one witness:
    online = solve(system, SolverOptions(cycles=CyclePolicy.ONLINE))
    print(
        f"\nIF-Online collapsed the cycle: x, y, z share representative "
        f"v{online.representative(x)} "
        f"(same_component(x, z) = {online.same_component(x, z)})"
    )


if __name__ == "__main__":
    main()
