#!/usr/bin/env python
"""Validate the Section 5 analytical model three ways.

1. Closed-form sums: Theorem 5.1's SF/IF ratio trend and Theorem 5.2's
   search-cost bound.
2. Monte-Carlo simulation of the random-graph model against the sums.
3. The production solver run on inputs drawn from the model's
   distribution.

Run:  python examples/model_validation.py
"""

from repro.model import (
    expected_reachable_exact,
    expected_work_if,
    expected_work_sf,
    measure_solver_on_model,
    simulate_reachable,
    simulate_work,
    theorem_5_1_ratio,
    theorem_5_2_bound,
)


def main() -> None:
    print("Theorem 5.1 — expected SF/IF work ratio at p=1/n, m=2n/3:")
    for n in (10**3, 10**4, 10**5, 10**6):
        print(f"  n={n:>9,}: {theorem_5_1_ratio(n):.3f}")
    print("  (the paper: approaches ~2.5)\n")

    print("Theorem 5.2 — expected nodes visited per partial search:")
    bound = theorem_5_2_bound(2.0)
    print(f"  closed-form bound at k=2: {bound:.3f} (paper: ~2.2)")
    print(f"  exact sum at n=10^6:      "
          f"{expected_reachable_exact(10**6, 2.0):.3f}")
    for k in (1.0, 2.0, 3.0, 4.0):
        print(f"  bound at k={k}: {theorem_5_2_bound(k):8.2f}")
    print("  (climbs sharply for denser graphs — the method relies on "
          "sparsity)\n")

    n, m, p = 8, 5, 1 / 8
    sim = simulate_work(n, m, p, trials=500, seed=42)
    print(f"Monte Carlo vs formulas (n={n}, m={m}, p=1/{n}):")
    print(f"  SF: simulated {sim.mean_work_sf:6.2f}  "
          f"formula {expected_work_sf(n, m, p):6.2f}")
    print(f"  IF: simulated {sim.mean_work_if:6.2f}  "
          f"formula {expected_work_if(n, m, p):6.2f}\n")

    reach = simulate_reachable(500, 2.0, trials=4, seed=7)
    print(f"Simulated decreasing-chain reachability (n=500, k=2): "
          f"{reach.mean_reachable:.2f} <= {bound:.2f}\n")

    print("Production solver on model-distributed inputs "
          "(SF-Oracle vs IF-Oracle work):")
    for n in (100, 400, 1000):
        comparison = measure_solver_on_model(n, trials=3, seed=1)
        print(f"  n={n:>5}: measured ratio {comparison.ratio:.2f}  "
              f"(formula: {theorem_5_1_ratio(n):.2f})")


if __name__ == "__main__":
    main()
